"""Global Greedy (G-Greedy), Algorithm 1 of the paper.

G-Greedy grows the strategy one triple at a time, always adding the candidate
with the largest positive marginal revenue that does not violate the display
or capacity constraint.  The selection mechanics -- the two-level heap of
§5.1, Minoux's lazy forward, batched candidate scoring and the
blocked-candidate discards of Algorithm 1 -- live in the shared
:class:`repro.core.selection.LazyGreedySelector`; this module only assembles
the paper-level configuration:

* heaps are seeded with isolated expected revenues ``p(i, t) * q(u, i, t)``
  (line 8 of Algorithm 1);
* ``ignore_saturation=True`` is the **GlobalNo** baseline: candidates are
  *selected* as if ``beta_i = 1`` everywhere, but the reported revenue of the
  final strategy uses the true saturation factors;
* ``use_lazy_forward=False`` / ``use_two_level_heap=False`` are ablations that
  must produce the same strategy while doing more work (benchmarked in
  ``benchmarks/test_ablation_*``).

The optional ``allowed_times`` / ``initial_strategy`` arguments support the
gradually-available-prices experiments (§6.3), where the horizon is solved one
sub-horizon at a time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.constraints import ConstraintChecker
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.selection import SEED_ISOLATED, LazyGreedySelector
from repro.core.strategy import Strategy
from repro.algorithms.base import RevMaxAlgorithm

__all__ = ["GlobalGreedy", "GlobalGreedyNoSaturation"]


class GlobalGreedy(RevMaxAlgorithm):
    """The G-Greedy algorithm (two-level heaps + lazy forward).

    Args:
        use_lazy_forward: recompute stale marginal revenues lazily (default)
            or eagerly after every selection.
        use_two_level_heap: use the two-level heap of §5.1 (default) or a
            single flat addressable heap (ablation).
        ignore_saturation: select triples as if no saturation existed
            (the GlobalNo baseline).
        backend: revenue-engine backend ("numpy" / "python"); ``None`` uses
            the process default.
        use_compiled: seed the frontier from the instance's columnar
            compilation (default).  ``False`` forces the per-triple seeding
            loop (the pre-compilation path, kept for the scalability
            benchmarks).
        shards: partition users into this many contiguous shards and select
            across worker processes (:mod:`repro.shard`; ``0``: one per
            core).  ``"auto"`` lets the measured cost model
            (:mod:`repro.autotune`) pick between per-core sharding and the
            serial columnar path, recording its decision in
            ``last_extras["parallel"]``.  Results are bit-identical to the
            serial run; explicit counts are worth it once instances reach
            hundreds of thousands of candidate pairs *and* the cores are
            there.
        jobs: worker processes for the sharded path (``None``/``"auto"``:
            one per shard, capped at the core count; ``1``: shards
            in-process).
    """

    name = "G-Greedy"

    def __init__(self, use_lazy_forward: bool = True,
                 use_two_level_heap: bool = True,
                 ignore_saturation: bool = False,
                 backend: Optional[str] = None,
                 use_compiled: Optional[bool] = None,
                 shards: Union[int, str, None] = None,
                 jobs: Union[int, str, None] = None) -> None:
        self._use_lazy_forward = use_lazy_forward
        self._use_two_level_heap = use_two_level_heap
        self._ignore_saturation = ignore_saturation
        self._use_compiled = use_compiled
        self._shards = shards
        self._jobs = jobs
        self.backend = backend
        if ignore_saturation:
            self.name = "GlobalNo"
        self.last_growth_curve: List[Tuple[int, float]] = []
        self.last_evaluations: int = 0
        self.last_lookups: int = 0
        self.last_extras: Dict[str, object] = {}

    def build_strategy(self, instance: RevMaxInstance,
                       allowed_times: Optional[Iterable[int]] = None,
                       initial_strategy: Optional[Strategy] = None) -> Strategy:
        """Run G-Greedy and return the constructed strategy.

        Args:
            instance: the REVMAX instance.
            allowed_times: if given, only triples at these time steps are
                candidates (the sub-horizon setting of §6.3).
            initial_strategy: strategy carried over from earlier sub-horizons;
                its triples count towards constraints and interact with new
                candidates through competition and saturation.
        """
        # True model first: compiling the base instance lets the GlobalNo
        # copy below transplant the cached CSR tensors instead of re-walking
        # the adoption table (the candidate table is beta-independent).
        true_model = RevenueModel(instance, backend=self.backend,
                                  compiled=self._use_compiled)
        selection_instance = (
            instance.with_betas(1.0) if self._ignore_saturation else instance
        )
        selection_model = RevenueModel(selection_instance, backend=self.backend,
                                       compiled=self._use_compiled)
        allowed = set(allowed_times) if allowed_times is not None else None

        strategy = (
            initial_strategy.copy() if initial_strategy is not None
            else Strategy(instance.catalog)
        )
        initial_revenue = true_model.revenue(strategy) if len(strategy) else 0.0

        selector = LazyGreedySelector(
            instance, selection_model, ConstraintChecker(instance),
            true_model=true_model if self._ignore_saturation else None,
            use_lazy_forward=self._use_lazy_forward,
            use_two_level_heap=self._use_two_level_heap,
            seed_priorities=SEED_ISOLATED,
            max_selections=self._max_selections(instance, allowed) + len(strategy),
            use_compiled=self._use_compiled,
            shards=self._shards,
            jobs=self._jobs,
        )
        growth_curve: List[Tuple[int, float]] = []
        # candidates=None is the whole ground set; the selector seeds from
        # the columnar compilation when the configuration allows it and
        # falls back to iterating instance.candidate_triples() otherwise.
        selector.select(strategy, None, allowed_times=allowed,
                        growth_curve=growth_curve,
                        initial_revenue=initial_revenue)

        self.last_growth_curve = growth_curve
        self.last_evaluations = selection_model.evaluations
        self.last_lookups = selection_model.lookups
        self.last_extras = {
            "lazy_forward": self._use_lazy_forward,
            "two_level_heap": self._use_two_level_heap,
            "ignore_saturation": self._ignore_saturation,
        }
        if self._shards is not None:
            self.last_extras["shards"] = self._shards
        decision = selector.last_parallel_decision
        if decision is not None:
            self.last_extras["parallel"] = decision.as_dict()
        return strategy

    @staticmethod
    def _max_selections(instance: RevMaxInstance,
                        allowed: Optional[Set[int]]) -> int:
        """Upper bound ``k * T * |users with candidates|`` on selections."""
        horizon = len(allowed) if allowed is not None else instance.horizon
        return instance.display_limit * horizon * max(1, len(instance.users()))

    # ------------------------------------------------------------------
    # dynamic re-solve
    # ------------------------------------------------------------------
    def _resolve_compatible(self) -> bool:
        """The incremental engine replays the paper-default configuration."""
        from repro.core.vectorized import resolve_backend

        return (
            not self._ignore_saturation
            and self._use_lazy_forward
            and self._use_two_level_heap
            and self._use_compiled is not False
            and resolve_backend(self.backend) == "numpy"
        )

    def resolve(self, instance: RevMaxInstance, delta=None) -> Strategy:
        """Apply ``delta`` to ``instance`` in place and re-solve it.

        Repeated calls against the *same instance object* are warm: the
        first call runs a cold solve and records the per-user admission
        streams; later calls repair only what each delta touched
        (:class:`repro.dynamic.incremental.IncrementalSolver`).  The
        returned strategy is bit-identical to
        ``build_strategy`` on the mutated instance -- admission order,
        gains and growth curve included.

        Configurations the incremental engine does not cover (GlobalNo,
        the ablation heaps/refresh modes, non-numpy backends) apply the
        delta and re-solve cold, so ``resolve`` is always safe to call.

        Args:
            instance: the instance to mutate and solve.
            delta: optional :class:`repro.dynamic.delta.InstanceDelta`;
                ``None`` (re-)solves the instance as is.

        Returns:
            The repaired strategy; ``last_growth_curve`` and
            ``last_extras["resolve"]`` are updated alongside.
        """
        # Imported lazily: plain greedy solves must not depend on the
        # dynamic layer.
        from repro.dynamic import apply_delta
        from repro.dynamic.incremental import IncrementalSolver

        if not self._resolve_compatible():
            if delta is not None:
                apply_delta(instance, delta)
            strategy = self.build_strategy(instance)
            self.last_extras["resolve"] = {"mode": "cold"}
            return strategy
        solver = getattr(self, "_incremental", None)
        if solver is None or solver.instance is not instance:
            solver = IncrementalSolver(instance, backend=self.backend)
            self._incremental = solver
            if delta is None:
                strategy = solver.solve()
            else:
                strategy = solver.resolve(delta)
        else:
            strategy = solver.resolve(delta)
        self.last_growth_curve = list(solver.growth_curve)
        self.last_extras["resolve"] = dict(solver.last_stats)
        return strategy


class GlobalGreedyNoSaturation(GlobalGreedy):
    """The GlobalNo baseline: G-Greedy that pretends saturation does not exist."""

    name = "GlobalNo"

    def __init__(self, backend: Optional[str] = None,
                 shards: Union[int, str, None] = None,
                 jobs: Union[int, str, None] = None) -> None:
        super().__init__(ignore_saturation=True, backend=backend,
                         shards=shards, jobs=jobs)
