"""Matroids over finite ground sets.

§4.2 of the paper reduces (relaxed) REVMAX to maximizing a non-monotone
submodular function subject to a *partition matroid* constraint.  This module
provides the small matroid toolkit that reduction needs:

* the abstract :class:`Matroid` interface (independence oracle plus the
  derived operations local search relies on),
* :class:`UniformMatroid` (independent iff ``|S| <= r``), and
* :class:`FreeMatroid` (everything independent) as degenerate baselines used
  in tests.

The partition matroid lives in :mod:`repro.matroid.partition` because it also
carries the REVMAX-specific construction of Lemma 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Hashable, Iterable, Set

__all__ = ["Matroid", "UniformMatroid", "FreeMatroid"]


class Matroid(ABC):
    """Abstract matroid ``M = (X, I)`` defined by an independence oracle."""

    @property
    @abstractmethod
    def ground_set(self) -> FrozenSet[Hashable]:
        """The ground set ``X``."""

    @abstractmethod
    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        """Return True iff ``subset`` is an independent set of the matroid."""

    # ------------------------------------------------------------------
    # derived operations
    # ------------------------------------------------------------------
    def can_add(self, independent_set: Set[Hashable], element: Hashable) -> bool:
        """True if adding ``element`` keeps the set independent."""
        if element in independent_set:
            return False
        return self.is_independent(set(independent_set) | {element})

    def can_swap(self, independent_set: Set[Hashable], remove: Hashable,
                 add: Hashable) -> bool:
        """True if exchanging ``remove`` for ``add`` keeps the set independent."""
        if remove not in independent_set or add in independent_set:
            return False
        candidate = (set(independent_set) - {remove}) | {add}
        return self.is_independent(candidate)

    def rank(self, subset: Iterable[Hashable]) -> int:
        """Return the rank of ``subset`` (size of a maximal independent subset).

        Computed greedily; correct for any matroid by the exchange property.
        """
        independent: Set[Hashable] = set()
        for element in subset:
            if self.can_add(independent, element):
                independent.add(element)
        return len(independent)

    def check_axioms(self, sample_sets: Iterable[Iterable[Hashable]]) -> None:
        """Spot-check downward closure and augmentation on the given sets.

        Intended for tests on small ground sets; raises ``AssertionError`` on
        the first violated axiom.
        """
        sets = [frozenset(s) for s in sample_sets]
        assert self.is_independent(frozenset()), "empty set must be independent"
        for candidate in sets:
            if not self.is_independent(candidate):
                continue
            for element in candidate:
                assert self.is_independent(candidate - {element}), (
                    "downward closure violated"
                )
        for small in sets:
            for large in sets:
                if not (self.is_independent(small) and self.is_independent(large)):
                    continue
                if len(small) >= len(large):
                    continue
                extendable = any(
                    self.is_independent(small | {element})
                    for element in large - small
                )
                assert extendable, "augmentation property violated"


class UniformMatroid(Matroid):
    """The uniform matroid ``U_{r, n}``: independent iff size at most ``r``."""

    def __init__(self, ground_set: Iterable[Hashable], rank: int) -> None:
        if rank < 0:
            raise ValueError("rank must be non-negative")
        self._ground = frozenset(ground_set)
        self._rank = rank

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    @property
    def max_rank(self) -> int:
        """The cardinality bound ``r``."""
        return self._rank

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        subset = set(subset)
        if not subset <= self._ground:
            return False
        return len(subset) <= self._rank


class FreeMatroid(Matroid):
    """The free matroid: every subset of the ground set is independent."""

    def __init__(self, ground_set: Iterable[Hashable]) -> None:
        self._ground = frozenset(ground_set)

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        return set(subset) <= self._ground
