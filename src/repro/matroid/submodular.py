"""Set-function utilities: submodularity and monotonicity diagnostics.

Theorem 2 of the paper states that the REVMAX revenue function is
non-negative, non-monotone and submodular over sets of user-item-time
triples.  The helpers here wrap an arbitrary set function with memoisation and
provide brute-force checkers used by the test suite to verify Theorem 2 on
small instances (and by property-based tests on random instances).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

__all__ = [
    "MemoizedSetFunction",
    "is_submodular",
    "is_monotone",
    "find_submodularity_violation",
]

SetFunction = Callable[[FrozenSet[Hashable]], float]


class MemoizedSetFunction:
    """Wrap a set function with memoisation and an evaluation counter.

    The local-search approximation algorithm evaluates the objective many
    times on overlapping sets; memoisation keeps the small-instance
    experiments tractable and the counter feeds complexity diagnostics.
    """

    def __init__(self, function: Callable[[Iterable[Hashable]], float]) -> None:
        self._function = function
        self._cache: Dict[FrozenSet[Hashable], float] = {}
        self._evaluations = 0

    @property
    def evaluations(self) -> int:
        """Number of underlying (non-cached) evaluations performed."""
        return self._evaluations

    def __call__(self, subset: Iterable[Hashable]) -> float:
        key = frozenset(subset)
        if key not in self._cache:
            self._cache[key] = float(self._function(key))
            self._evaluations += 1
        return self._cache[key]

    def marginal(self, subset: Iterable[Hashable], element: Hashable) -> float:
        """Return ``f(S + e) - f(S)``."""
        base = frozenset(subset)
        return self(base | {element}) - self(base)


def _all_subsets(ground: List[Hashable], max_size: Optional[int] = None):
    limit = len(ground) if max_size is None else min(max_size, len(ground))
    for size in range(limit + 1):
        for combo in itertools.combinations(ground, size):
            yield frozenset(combo)


def find_submodularity_violation(
    function: Callable[[Iterable[Hashable]], float],
    ground_set: Iterable[Hashable],
    tolerance: float = 1e-9,
    max_subset_size: Optional[int] = None,
) -> Optional[Tuple[FrozenSet[Hashable], FrozenSet[Hashable], Hashable]]:
    """Search exhaustively for a violation of diminishing returns.

    Returns the first ``(S, S', w)`` with ``S subset of S'`` and
    ``f(S + w) - f(S) < f(S' + w) - f(S') - tolerance``; ``None`` if no
    violation exists among subsets of size up to ``max_subset_size``.
    Exponential -- intended only for small ground sets in tests.
    """
    ground = list(ground_set)
    wrapped = MemoizedSetFunction(function)
    subsets = list(_all_subsets(ground, max_subset_size))
    for small in subsets:
        for large in subsets:
            if not small <= large:
                continue
            for element in ground:
                if element in large:
                    continue
                gain_small = wrapped.marginal(small, element)
                gain_large = wrapped.marginal(large, element)
                if gain_small < gain_large - tolerance:
                    return small, large, element
    return None


def is_submodular(
    function: Callable[[Iterable[Hashable]], float],
    ground_set: Iterable[Hashable],
    tolerance: float = 1e-9,
    max_subset_size: Optional[int] = None,
) -> bool:
    """True if no submodularity violation is found by exhaustive search."""
    return (
        find_submodularity_violation(function, ground_set, tolerance, max_subset_size)
        is None
    )


def is_monotone(
    function: Callable[[Iterable[Hashable]], float],
    ground_set: Iterable[Hashable],
    tolerance: float = 1e-9,
    max_subset_size: Optional[int] = None,
) -> bool:
    """True if ``f`` never decreases when an element is added (within tolerance)."""
    ground = list(ground_set)
    wrapped = MemoizedSetFunction(function)
    for subset in _all_subsets(ground, max_subset_size):
        for element in ground:
            if element in subset:
                continue
            if wrapped.marginal(subset, element) < -tolerance:
                return False
    return True
