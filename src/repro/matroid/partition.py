"""Partition matroids and the REVMAX display-constraint construction (Lemma 2).

A partition matroid is given by a partition of the ground set into disjoint
blocks ``X_1, ..., X_m`` with per-block capacities ``b_1, ..., b_m``; a set is
independent iff it contains at most ``b_j`` elements of each block.

Lemma 2 of the paper observes that the display constraint of REVMAX is exactly
such a matroid: project the ground set ``U x I x [T]`` onto (user, time) pairs
and cap every block at ``k``.  :func:`display_constraint_matroid` performs
that construction for a concrete instance.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Optional

from repro.core.problem import RevMaxInstance
from repro.matroid.matroid import Matroid

__all__ = ["PartitionMatroid", "display_constraint_matroid"]


class PartitionMatroid(Matroid):
    """Partition matroid defined by a block function and per-block capacities.

    Args:
        ground_set: the elements of the matroid.
        block_of: maps an element to its block identifier.
        capacities: mapping ``block id -> maximum number of elements``;
            blocks absent from the mapping use ``default_capacity``.
        default_capacity: capacity for blocks not listed in ``capacities``.
    """

    def __init__(
        self,
        ground_set: Iterable[Hashable],
        block_of: Callable[[Hashable], Hashable],
        capacities: Optional[Dict[Hashable, int]] = None,
        default_capacity: int = 1,
    ) -> None:
        self._ground = frozenset(ground_set)
        self._block_of = block_of
        self._capacities = dict(capacities or {})
        if default_capacity < 0:
            raise ValueError("default_capacity must be non-negative")
        if any(v < 0 for v in self._capacities.values()):
            raise ValueError("block capacities must be non-negative")
        self._default_capacity = default_capacity

    @property
    def ground_set(self) -> FrozenSet[Hashable]:
        return self._ground

    def block(self, element: Hashable) -> Hashable:
        """Return the block identifier of ``element``."""
        return self._block_of(element)

    def capacity(self, block: Hashable) -> int:
        """Return the capacity of ``block``."""
        return self._capacities.get(block, self._default_capacity)

    def is_independent(self, subset: Iterable[Hashable]) -> bool:
        subset = set(subset)
        if not subset <= self._ground:
            return False
        counts: Dict[Hashable, int] = {}
        for element in subset:
            block = self._block_of(element)
            counts[block] = counts.get(block, 0) + 1
            if counts[block] > self.capacity(block):
                return False
        return True

    # The generic ``can_add`` re-checks the whole set; for a partition matroid
    # only the block of the new element matters, so specialise it.
    def can_add(self, independent_set, element) -> bool:  # type: ignore[override]
        if element in independent_set or element not in self._ground:
            return False
        block = self._block_of(element)
        count = sum(1 for other in independent_set if self._block_of(other) == block)
        return count < self.capacity(block)


def display_constraint_matroid(instance: RevMaxInstance) -> PartitionMatroid:
    """Build the partition matroid of Lemma 2 for a REVMAX instance.

    The ground set is the set of candidate triples (positive primitive
    adoption probability), blocks are (user, time) pairs, and every block has
    capacity ``k`` (the display limit).
    """
    ground = list(instance.candidate_triples())
    return PartitionMatroid(
        ground_set=ground,
        block_of=lambda triple: (triple.user, triple.t),
        capacities={},
        default_capacity=instance.display_limit,
    )
