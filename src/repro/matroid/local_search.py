"""Local-search maximization of non-monotone submodular functions.

This is the approximation machinery of §4.2: Lee, Mirrokni, Nagarajan and
Sviridenko's local-search algorithm gives a ``1 / (4 + eps)`` approximation
for maximizing a non-negative (possibly non-monotone) submodular function
subject to a matroid constraint.  The algorithm, specialised to a single
matroid, is:

1. start from the single best element ``{v*}``;
2. repeatedly apply any *add*, *delete* or *swap* move that improves the
   objective by a factor of at least ``1 + eps / n^2`` while keeping the set
   independent, until no such move exists (an approximate local optimum);
3. run the same procedure a second time on the ground set *excluding* the
   first solution, and return the better of the two local optima.

The implementation is generic (any :class:`~repro.matroid.matroid.Matroid`,
any set function); REVMAX plugs in the partition matroid of Lemma 2 and the
R-REVMAX effective revenue through
:class:`repro.algorithms.local_search.LocalSearchApproximation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Iterable, Optional, Set

from repro.matroid.matroid import Matroid
from repro.matroid.submodular import MemoizedSetFunction

__all__ = ["LocalSearchResult", "local_search_matroid", "non_monotone_local_search"]


@dataclass
class LocalSearchResult:
    """Outcome of one local-search run.

    Attributes:
        solution: the locally optimal independent set.
        value: objective value of the solution.
        moves: number of improving moves applied.
        evaluations: number of distinct objective evaluations used.
    """

    solution: FrozenSet[Hashable]
    value: float
    moves: int
    evaluations: int


def _best_single_element(
    objective: MemoizedSetFunction,
    matroid: Matroid,
    candidates: Iterable[Hashable],
) -> Optional[Hashable]:
    best_element = None
    best_value = 0.0
    for element in candidates:
        if not matroid.is_independent({element}):
            continue
        value = objective({element})
        if best_element is None or value > best_value:
            best_element = element
            best_value = value
    return best_element


def local_search_matroid(
    objective: Callable[[Iterable[Hashable]], float],
    matroid: Matroid,
    ground_set: Optional[Iterable[Hashable]] = None,
    epsilon: float = 0.25,
    max_iterations: int = 10_000,
    initial_solution: Optional[Iterable[Hashable]] = None,
) -> LocalSearchResult:
    """Run one approximate local search within the matroid.

    Args:
        objective: non-negative set function to maximize.
        matroid: the independence system constraining feasible sets.
        ground_set: candidate elements (defaults to the matroid's ground set).
        epsilon: slack of the approximate improvement threshold; moves are
            only taken when they improve the value by a factor of at least
            ``1 + epsilon / n**2``.
        max_iterations: hard cap on the number of improving moves.
        initial_solution: optional independent set to start the search from
            (e.g. a greedy warm start) instead of the best single element of
            Lee et al.'s analysis.  Must be independent in the matroid.

    Returns:
        A :class:`LocalSearchResult` describing the local optimum found.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    candidates = list(ground_set if ground_set is not None else matroid.ground_set)
    wrapped = (
        objective
        if isinstance(objective, MemoizedSetFunction)
        else MemoizedSetFunction(objective)
    )
    n = max(1, len(candidates))
    threshold = 1.0 + epsilon / (n * n)

    current: Optional[Set[Hashable]] = None
    if initial_solution is not None:
        current = set(initial_solution)
        if current and not matroid.is_independent(current):
            raise ValueError("initial_solution must be independent in the matroid")
        if not current:
            current = None
    if current is None:
        start = _best_single_element(wrapped, matroid, candidates)
        if start is None:
            return LocalSearchResult(
                frozenset(), wrapped(frozenset()), 0, wrapped.evaluations
            )
        current = {start}
    current_value = wrapped(current)
    moves = 0
    improved = True
    while improved and moves < max_iterations:
        improved = False
        # Delete moves.
        for element in sorted(current, key=repr):
            candidate = current - {element}
            value = wrapped(candidate)
            if value > current_value * threshold or (
                current_value <= 0.0 and value > current_value
            ):
                current, current_value = candidate, value
                moves += 1
                improved = True
                break
        if improved:
            continue
        # Add moves.
        for element in candidates:
            if element in current or not matroid.can_add(current, element):
                continue
            candidate = current | {element}
            value = wrapped(candidate)
            if value > current_value * threshold:
                current, current_value = candidate, value
                moves += 1
                improved = True
                break
        if improved:
            continue
        # Swap moves.
        for removed in sorted(current, key=repr):
            for added in candidates:
                if added in current or not matroid.can_swap(current, removed, added):
                    continue
                candidate = (current - {removed}) | {added}
                value = wrapped(candidate)
                if value > current_value * threshold:
                    current, current_value = candidate, value
                    moves += 1
                    improved = True
                    break
            if improved:
                break
    return LocalSearchResult(frozenset(current), current_value, moves, wrapped.evaluations)


def non_monotone_local_search(
    objective: Callable[[Iterable[Hashable]], float],
    matroid: Matroid,
    ground_set: Optional[Iterable[Hashable]] = None,
    epsilon: float = 0.25,
    max_iterations: int = 10_000,
    initial_solution: Optional[Iterable[Hashable]] = None,
) -> LocalSearchResult:
    """Two-phase local search of Lee et al. for non-monotone objectives.

    Runs :func:`local_search_matroid` once on the full ground set and once on
    the ground set with the first solution removed, returning the better of
    the two local optima.  This second run is what lifts the guarantee from
    monotone to general non-negative submodular objectives.

    An ``initial_solution`` (e.g. a greedy warm start) only affects the first
    phase; the second phase still explores the complement of the first local
    optimum from scratch.
    """
    candidates = list(ground_set if ground_set is not None else matroid.ground_set)
    wrapped = (
        objective
        if isinstance(objective, MemoizedSetFunction)
        else MemoizedSetFunction(objective)
    )
    first = local_search_matroid(wrapped, matroid, candidates, epsilon,
                                 max_iterations, initial_solution=initial_solution)
    remaining = [element for element in candidates if element not in first.solution]
    second = local_search_matroid(wrapped, matroid, remaining, epsilon, max_iterations)
    best = first if first.value >= second.value else second
    return LocalSearchResult(
        solution=best.solution,
        value=best.value,
        moves=first.moves + second.moves,
        evaluations=wrapped.evaluations,
    )
