"""Matroid / submodular optimization toolkit (§4 of the paper)."""

from repro.matroid.matroid import FreeMatroid, Matroid, UniformMatroid
from repro.matroid.partition import PartitionMatroid, display_constraint_matroid
from repro.matroid.submodular import (
    MemoizedSetFunction,
    find_submodularity_violation,
    is_monotone,
    is_submodular,
)
from repro.matroid.local_search import (
    LocalSearchResult,
    local_search_matroid,
    non_monotone_local_search,
)

__all__ = [
    "FreeMatroid",
    "LocalSearchResult",
    "Matroid",
    "MemoizedSetFunction",
    "PartitionMatroid",
    "UniformMatroid",
    "display_constraint_matroid",
    "find_submodularity_violation",
    "is_monotone",
    "is_submodular",
    "local_search_matroid",
    "non_monotone_local_search",
]
