"""Oracles for the capacity factor ``B_S(i, t)`` of R-REVMAX (Definition 4).

``B_S(i, t)`` is the probability that *at most* ``q_i - 1`` of the users that
item ``i`` was recommended to before (or at) time ``t`` -- other than the
target user -- actually adopt it.  With independent per-user adoption events,
the number of adopters follows a Poisson-binomial distribution, whose tail can
be computed exactly by dynamic programming in ``O(m * q_i)`` time for ``m``
competing users, or estimated by Monte-Carlo sampling when ``m`` is large.

The paper leaves the oracle abstract ("given an oracle for estimating or
computing probability"); both implementations below satisfy that contract.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "poisson_binomial_at_most",
    "PoissonBinomialCapacityOracle",
    "MonteCarloCapacityOracle",
]


def poisson_binomial_at_most(probabilities: Sequence[float], threshold: int) -> float:
    """Exact ``Pr[X <= threshold]`` for ``X = sum of independent Bernoullis``.

    Args:
        probabilities: success probability of each independent Bernoulli trial.
        threshold: the inclusive upper bound on the number of successes.

    Returns:
        The cumulative probability.  ``threshold < 0`` returns 0.0 and a
        threshold at least as large as the number of trials returns 1.0.
    """
    probabilities = [float(p) for p in probabilities]
    if any(p < 0.0 or p > 1.0 for p in probabilities):
        raise ValueError("probabilities must lie in [0, 1]")
    if threshold < 0:
        return 0.0
    count = len(probabilities)
    if threshold >= count:
        return 1.0
    # dp[j] = probability of exactly j successes among the trials seen so far,
    # with index threshold + 1 acting as an absorbing "too many" state.
    dp = np.zeros(threshold + 2)
    dp[0] = 1.0
    for p in probabilities:
        new = np.zeros_like(dp)
        for j in range(threshold + 1):
            new[j] += dp[j] * (1.0 - p)
            new[j + 1] += dp[j] * p
        new[threshold + 1] += dp[threshold + 1]
        dp = new
    return float(np.sum(dp[: threshold + 1]))


class PoissonBinomialCapacityOracle:
    """Exact capacity oracle based on the Poisson-binomial DP."""

    def at_most(self, probabilities: Sequence[float], threshold: int) -> float:
        """Return ``Pr[number of adopters <= threshold]`` exactly."""
        return poisson_binomial_at_most(probabilities, threshold)


class MonteCarloCapacityOracle:
    """Monte-Carlo capacity oracle for large competing-user sets.

    Args:
        num_samples: number of Bernoulli-vector samples per query.
        seed: seed of the internal random generator (for reproducibility).
    """

    def __init__(self, num_samples: int = 2000, seed: Optional[int] = 0) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        self._num_samples = num_samples
        self._rng = np.random.default_rng(seed)

    @property
    def num_samples(self) -> int:
        """Number of samples drawn per query."""
        return self._num_samples

    def at_most(self, probabilities: Sequence[float], threshold: int) -> float:
        """Estimate ``Pr[number of adopters <= threshold]`` by sampling."""
        probabilities = np.asarray(list(probabilities), dtype=float)
        if probabilities.size == 0:
            return 1.0 if threshold >= 0 else 0.0
        if threshold < 0:
            return 0.0
        if threshold >= probabilities.size:
            return 1.0
        draws = self._rng.random((self._num_samples, probabilities.size))
        successes = (draws < probabilities[None, :]).sum(axis=1)
        return float(np.mean(successes <= threshold))
