"""Monte-Carlo simulation of the adoption process induced by a strategy.

Definition 1 of the paper admits the following generative reading for a fixed
user ``u`` and item class ``c``:

* every recommended triple ``(u, j, tau)`` is independently *desired* with its
  primitive probability ``q(u, j, tau)``;
* a desired triple additionally survives a saturation thinning with
  probability ``beta_j ** M_S(u, j, tau)``;
* the triple ``(u, i, t)`` results in an adoption exactly when it is desired,
  survives thinning, and no *competing* triple -- same class, strictly earlier
  time, or same time but a different item -- was desired.

Under this process the probability of the adoption event equals
``q_S(u, i, t)`` exactly, so the sample mean of the realised revenue is an
unbiased estimator of ``Rev(S)``.  The simulator is used in tests and in the
experiment harness as an end-to-end validation of the closed-form revenue
computation, and to report realised (as opposed to expected) adoption counts
per item.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import memory_term
from repro.core.strategy import Strategy

__all__ = ["SimulationResult", "AdoptionSimulator"]


@dataclass
class SimulationResult:
    """Aggregate output of a batch of adoption simulations.

    Attributes:
        num_runs: number of independent simulated horizons.
        mean_revenue: average realised revenue across runs.
        std_revenue: standard deviation of realised revenue across runs.
        mean_adoptions: average number of adoptions per run.
        item_adoption_counts: total adoptions per item across all runs.
    """

    num_runs: int
    mean_revenue: float
    std_revenue: float
    mean_adoptions: float
    item_adoption_counts: Dict[int, int]

    def revenue_confidence_halfwidth(self) -> float:
        """Half-width of a ~95% normal confidence interval for the mean."""
        if self.num_runs <= 1:
            return float("inf")
        return 1.96 * self.std_revenue / np.sqrt(self.num_runs)


class AdoptionSimulator:
    """Simulate user adoptions under a recommendation strategy.

    Args:
        instance: the REVMAX instance providing probabilities and prices.
        seed: seed for the random generator (simulations are reproducible).
    """

    def __init__(self, instance: RevMaxInstance, seed: Optional[int] = 0) -> None:
        self._instance = instance
        self._rng = np.random.default_rng(seed)

    def simulate_once(self, strategy: Strategy) -> Tuple[float, List[Triple]]:
        """Simulate a single horizon.

        Returns:
            ``(revenue, adopted_triples)`` for one realisation of the process.
        """
        instance = self._instance
        revenue = 0.0
        adopted: List[Triple] = []
        for (_, _), group in strategy.groups():
            ordered = sorted(group, key=lambda z: (z.t, z.item))
            desires = {
                triple: bool(
                    self._rng.random()
                    < instance.probability(triple.user, triple.item, triple.t)
                )
                for triple in ordered
            }
            for triple in ordered:
                if not desires[triple]:
                    continue
                blocked = any(
                    desires[other]
                    and (
                        other.t < triple.t
                        or (other.t == triple.t and other.item != triple.item)
                    )
                    for other in ordered
                    if other != triple
                )
                if blocked:
                    continue
                memory = memory_term(group, triple.t)
                keep_probability = (
                    instance.beta(triple.item) ** memory if memory > 0.0 else 1.0
                )
                if self._rng.random() < keep_probability:
                    revenue += instance.price(triple.item, triple.t)
                    adopted.append(triple)
        return revenue, adopted

    def run(self, strategy: Strategy, num_runs: int = 200) -> SimulationResult:
        """Simulate ``num_runs`` independent horizons and aggregate results."""
        if num_runs <= 0:
            raise ValueError("num_runs must be positive")
        revenues = np.zeros(num_runs)
        adoption_totals = np.zeros(num_runs)
        item_counts: Dict[int, int] = {}
        for run in range(num_runs):
            revenue, adopted = self.simulate_once(strategy)
            revenues[run] = revenue
            adoption_totals[run] = len(adopted)
            for triple in adopted:
                item_counts[triple.item] = item_counts.get(triple.item, 0) + 1
        return SimulationResult(
            num_runs=num_runs,
            mean_revenue=float(np.mean(revenues)),
            std_revenue=float(np.std(revenues, ddof=1)) if num_runs > 1 else 0.0,
            mean_adoptions=float(np.mean(adoption_totals)),
            item_adoption_counts=item_counts,
        )
