"""Stochastic oracles and simulators.

* :mod:`repro.simulation.capacity_oracle` -- exact (Poisson-binomial dynamic
  programming) and Monte-Carlo estimators of the capacity factor
  ``B_S(i, t)`` used by the relaxed R-REVMAX objective (Definition 4).
* :mod:`repro.simulation.adoption_sim` -- a Monte-Carlo simulator of the
  adoption process induced by a strategy, used to validate that the
  closed-form expected revenue ``Rev(S)`` matches simulated revenue.
"""

from repro.simulation.capacity_oracle import (
    MonteCarloCapacityOracle,
    PoissonBinomialCapacityOracle,
    poisson_binomial_at_most,
)
from repro.simulation.adoption_sim import AdoptionSimulator

__all__ = [
    "MonteCarloCapacityOracle",
    "PoissonBinomialCapacityOracle",
    "poisson_binomial_at_most",
    "AdoptionSimulator",
]
