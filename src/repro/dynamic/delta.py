"""Instance deltas: the batched mutations of a dynamic recommendation cycle.

The paper's setting is *dynamic*: prices move between recommendation
cycles, adoption-probability estimates are refreshed as new signals arrive,
item stock is depleted or restocked, and new users register.  An
:class:`InstanceDelta` describes one such batch of changes declaratively,
so it can be

* applied **in place** to a compiled instance
  (:meth:`repro.core.compiled.CompiledInstance.apply_delta` /
  :func:`repro.dynamic.apply_delta`) instead of re-running the whole
  compilation, and
* serialized to plain JSON (the ``repro resolve --delta deltas.json`` CLI
  workflow) with the same explicit, versioned format as the other
  :mod:`repro.io` documents.

Four kinds of change are supported, matching the tensors they touch:

=====================  ==================================================
``price_updates``      ``(item, t) -> new price`` cells of the price matrix
``probability_updates``  ``(user, item) -> new length-T vector`` for an
                       *existing* candidate pair
``capacity_updates``   ``item -> new absolute capacity`` (restock or
                       depletion)
``new_users``          ``user -> {item: length-T vector}`` appended as a
                       CSR tail segment (ids must extend the user range
                       contiguously)
=====================  ==================================================

A delta never removes candidate pairs or items: absent pairs stay
probability zero, and "removing" a pair is expressed as a probability
update to the zero vector (which empties its heap row on the next solve).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Set, Tuple, Union

import numpy as np

__all__ = ["InstanceDelta", "load_delta", "save_delta"]

#: Version tag of the JSON encoding (mirrors :data:`repro.io.FORMAT_VERSION`).
DELTA_FORMAT_VERSION = 1

_PathLike = Union[str, "Path"]


def _as_probability_vector(vector, subject: str) -> np.ndarray:
    """Validate and normalize one adoption-probability time series."""
    array = np.asarray(vector, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(
            f"probability vector for {subject} must be one-dimensional, "
            f"got shape {array.shape}"
        )
    if np.isnan(array).any():
        raise ValueError(f"probability vector for {subject} contains NaN")
    if np.any((array < 0.0) | (array > 1.0)):
        bad = array[(array < 0.0) | (array > 1.0)][0]
        raise ValueError(
            f"probabilities must lie in [0, 1]; got {bad!r} for {subject}"
        )
    return array


@dataclass
class InstanceDelta:
    """A batch of mutations to apply between two solves of one instance.

    Attributes:
        price_updates: ``(item, t) -> new price`` (must be non-negative).
        probability_updates: ``(user, item) -> new length-T probability
            vector`` for pairs already in the candidate table.
        capacity_updates: ``item -> new absolute capacity`` (non-negative;
            a value below the item's current audience simply means no
            *further* users can be added -- admissions are never retracted).
        new_users: ``user id -> {item: length-T probability vector}``.  Ids
            must be exactly ``num_users, num_users + 1, ...`` of the
            instance the delta is applied to; a user may have zero pairs.
        name: optional label for logs and persisted documents.
    """

    price_updates: Dict[Tuple[int, int], float] = field(default_factory=dict)
    probability_updates: Dict[Tuple[int, int], np.ndarray] = field(
        default_factory=dict
    )
    capacity_updates: Dict[int, int] = field(default_factory=dict)
    new_users: Dict[int, Dict[int, np.ndarray]] = field(default_factory=dict)
    name: str = "delta"

    def __post_init__(self) -> None:
        self.price_updates = {
            (int(item), int(t)): float(price)
            for (item, t), price in self.price_updates.items()
        }
        for (item, t), price in self.price_updates.items():
            if price < 0.0:
                raise ValueError(
                    f"price update for (item={item}, t={t}) must be "
                    f"non-negative, got {price!r}"
                )
        self.probability_updates = {
            (int(user), int(item)): _as_probability_vector(
                vector, f"(user={user}, item={item})"
            )
            for (user, item), vector in self.probability_updates.items()
        }
        self.capacity_updates = {
            int(item): int(capacity)
            for item, capacity in self.capacity_updates.items()
        }
        for item, capacity in self.capacity_updates.items():
            if capacity < 0:
                raise ValueError(
                    f"capacity update for item {item} must be non-negative, "
                    f"got {capacity!r}"
                )
        self.new_users = {
            int(user): {
                int(item): _as_probability_vector(
                    vector, f"(new user={user}, item={item})"
                )
                for item, vector in pairs.items()
            }
            for user, pairs in self.new_users.items()
        }

    # ------------------------------------------------------------------
    # validation against an instance's dimensions
    # ------------------------------------------------------------------
    def validate_ranges(self, num_items: int, horizon: int,
                        num_users: int) -> None:
        """Range / shape / contiguity checks against instance dimensions.

        The single definition shared by
        :meth:`repro.core.compiled.CompiledInstance.apply_delta` and the
        dict-backed path of :func:`repro.dynamic.apply_delta`, so the two
        layouts can never drift in what they accept.  Existence checks
        (does a probability update name a known candidate pair?) stay with
        each layout -- only it knows its pair set.

        Raises:
            ValueError: naming the offending cell/pair/user; callers
                guarantee nothing was applied yet (atomicity).
        """
        for (item, t) in self.price_updates:
            if not (0 <= item < num_items and 0 <= t < horizon):
                raise ValueError(
                    f"price update for (item={item}, t={t}) outside the "
                    f"{num_items} x {horizon} price matrix"
                )
        for item in self.capacity_updates:
            if not 0 <= item < num_items:
                raise ValueError(
                    f"capacity update for item {item} outside "
                    f"0..{num_items - 1}"
                )
        for (user, item), vector in self.probability_updates.items():
            if vector.shape != (horizon,):
                raise ValueError(
                    f"probability vector for (user={user}, item={item}) "
                    f"must have length {horizon}, got shape {vector.shape}"
                )
        expected = list(range(num_users, num_users + len(self.new_users)))
        if sorted(self.new_users) != expected:
            raise ValueError(
                f"new user ids must be exactly {expected} (contiguous "
                f"after the current {num_users} users), got "
                f"{sorted(self.new_users)}"
            )
        for user, pairs in self.new_users.items():
            for item, vector in pairs.items():
                if not 0 <= item < num_items:
                    raise ValueError(
                        f"new user {user} names item {item}, outside "
                        f"0..{num_items - 1}"
                    )
                if vector.shape != (horizon,):
                    raise ValueError(
                        f"probability vector for (new user={user}, "
                        f"item={item}) must have length {horizon}, got "
                        f"shape {vector.shape}"
                    )

    # ------------------------------------------------------------------
    # introspection (what can this delta touch?)
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when applying the delta changes nothing."""
        return not (self.price_updates or self.probability_updates
                    or self.capacity_updates or self.new_users)

    def touched_pairs(self) -> Set[Tuple[int, int]]:
        """(user, item) pairs whose primitive probabilities can change.

        Probability updates and every pair of a new user.  This is the pair
        half of the *dirty frontier*: any cached group revenue involving one
        of these pairs is stale after the delta.
        """
        touched = set(self.probability_updates)
        for user, pairs in self.new_users.items():
            touched.update((user, item) for item in pairs)
        return touched

    def touched_price_cells(self) -> Set[Tuple[int, int]]:
        """(item, t) cells of the price matrix the delta rewrites."""
        return set(self.price_updates)

    def horizon_of_vectors(self) -> int:
        """Length of the first probability vector (-1 when none present)."""
        for vector in self.probability_updates.values():
            return int(vector.shape[0])
        for pairs in self.new_users.values():
            for vector in pairs.values():
                return int(vector.shape[0])
        return -1

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Encode the delta as a JSON-serializable dictionary."""
        return {
            "format_version": DELTA_FORMAT_VERSION,
            "kind": "revmax-delta",
            "name": self.name,
            "price_updates": [
                [item, t, price]
                for (item, t), price in sorted(self.price_updates.items())
            ],
            "probability_updates": [
                {"user": user, "item": item,
                 "probabilities": vector.tolist()}
                for (user, item), vector
                in sorted(self.probability_updates.items())
            ],
            "capacity_updates": [
                [item, capacity]
                for item, capacity in sorted(self.capacity_updates.items())
            ],
            "new_users": [
                {"user": user,
                 "pairs": [
                     {"item": item, "probabilities": vector.tolist()}
                     for item, vector in sorted(pairs.items())
                 ]}
                for user, pairs in sorted(self.new_users.items())
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict) -> "InstanceDelta":
        """Decode a delta from the dictionary produced by :meth:`to_dict`."""
        kind = document.get("kind")
        if kind != "revmax-delta":
            raise ValueError(f"expected a 'revmax-delta' document, got {kind!r}")
        version = document.get("format_version")
        if version != DELTA_FORMAT_VERSION:
            raise ValueError(
                f"unsupported delta format version {version!r} "
                f"(supported: {DELTA_FORMAT_VERSION})"
            )
        return cls(
            price_updates={
                (int(item), int(t)): float(price)
                for item, t, price in document.get("price_updates", [])
            },
            probability_updates={
                (int(row["user"]), int(row["item"])): row["probabilities"]
                for row in document.get("probability_updates", [])
            },
            capacity_updates={
                int(item): int(capacity)
                for item, capacity in document.get("capacity_updates", [])
            },
            new_users={
                int(row["user"]): {
                    int(pair["item"]): pair["probabilities"]
                    for pair in row.get("pairs", [])
                }
                for row in document.get("new_users", [])
            },
            name=document.get("name", "delta"),
        )

    def summary(self) -> str:
        """One-line human-readable description for CLI output and logs."""
        return (
            f"delta {self.name!r}: {len(self.price_updates)} price cells, "
            f"{len(self.probability_updates)} pair probability vectors, "
            f"{len(self.capacity_updates)} capacities, "
            f"{len(self.new_users)} new users"
        )


def save_delta(delta: InstanceDelta, path: _PathLike) -> None:
    """Write a delta to a JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(delta.to_dict(), handle, indent=2, sort_keys=True)


def load_delta(path: _PathLike) -> InstanceDelta:
    """Read a delta from a JSON file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return InstanceDelta.from_dict(json.load(handle))
