"""Dynamic re-solve layer: instance deltas + warm-started incremental G-Greedy.

The paper frames REVMAX as a *dynamic* recommendation problem -- prices,
adoption probabilities and capacities drift between cycles -- but a naive
deployment re-solves every cycle from scratch.  This package closes that
gap:

* :class:`~repro.dynamic.delta.InstanceDelta` declares a batch of changes
  (price cells, pair probability vectors, capacities, new users);
* :func:`~repro.dynamic.apply.apply_delta` patches a live instance (and its
  compiled tensors) in place instead of recompiling;
* :class:`~repro.dynamic.incremental.IncrementalSolver` repairs a
  previously computed G-Greedy strategy after a delta, reusing the
  recorded admission streams of every untouched user, with a hard
  guarantee of bit-identical equality to a cold solve on the mutated
  instance.

See ``docs/architecture.md`` ("Dynamic re-solve") for the design and
``docs/testing.md`` for how the differential suites pin the equality down.
"""

from repro.dynamic.apply import apply_delta
from repro.dynamic.delta import InstanceDelta, load_delta, save_delta
from repro.dynamic.incremental import IncrementalSolver, SolverState

__all__ = [
    "InstanceDelta",
    "IncrementalSolver",
    "SolverState",
    "apply_delta",
    "load_delta",
    "save_delta",
]
