"""Warm-started incremental G-Greedy: re-solve after an instance delta.

A cold columnar G-Greedy at production scale spends almost all of its time
in frontier mechanics -- popping, lazily refreshing and discarding millions
of heap entries -- yet between two recommendation cycles only a small slice
of the instance actually changes.  :class:`IncrementalSolver` exploits a
structural fact of Algorithm 1 to skip the kernel and frontier work for the
untouched slice, while guaranteeing **exactly the strategy a cold columnar
G-Greedy would produce on the mutated instance** (ties, admission order and
growth curve included).

The decomposition
-----------------
Every quantity the admit loop computes is *user-local*: marginal revenues
couple triples only within one (user, class) group (Definition 1), the
display constraint is per (user, time), and lazy-forward freshness compares
against the user's own group sizes.  The only cross-user couplings are

1. the **capacity constraint** (items fill up across users), and
2. the **global heap order** (which user's candidate pops next).

When (1) can never fire -- for every item, the number of distinct candidate
users is at most its capacity, a one-line vectorized *capacity-safety
certificate* -- the run factorizes: the selector-level pop sequence of each
user's candidates (lazy refreshes, display discards, admissions, each with
the priority it popped at) is a deterministic function of that user's rows
alone, and the global run is exactly the **k-way merge** of those per-user
sequences by the columnar frontier's comparator ``(-priority, CSR row)``.
Replaying a recorded sequence costs a heap push per event -- no revenue
kernels, no frontier, no freshness bookkeeping.  Gate events (refreshes and
discards) are merged as well as admissions, which is what keeps the
interleaving exact even where a lazy refresh *raises* a priority (the
revenue function is close to but not exactly submodular, and such upward
refreshes do occur on real pipeline data).

A delta therefore re-solves as:

* patch the tensors in place (:func:`repro.dynamic.apply_delta`);
* mark the **dirty frontier** -- users owning an updated pair, users with a
  candidate pair on a price-touched item, and new users (only their heap
  rows and (user, class) groups can score differently);
* re-run the greedy loop *per dirty user* on its own candidate rows (the
  same :class:`~repro.core.selection.LazyGreedySelector` loop, so every
  float and tie-break matches the cold run's);
* merge the fresh dirty sequences with the recorded clean sequences.

Soundness guards
----------------
Per-user replay additionally requires the recorded sequences to be
*complete*: a run that ends at the non-positive break cut every user's
sequence at a global condition, and a run that hit a capacity block coupled
users.  Both are recorded on the trace
(:class:`~repro.core.selection.SelectionTrace`); when a guard fails --
including the capacity certificate on the *mutated* capacities --
:meth:`IncrementalSolver.resolve` silently falls back to a full cold replay
on the patched tensors, which is still correct, just not fast.  The
differential suites (``tests/test_dynamic.py``,
``tests/test_differential.py``) assert bit-identical equality against a
cold solve either way.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.constraints import ConstraintChecker
from repro.core.entities import Triple
from repro.core.problem import RevMaxInstance
from repro.core.revenue import RevenueModel
from repro.core.selection import (
    SEED_ISOLATED,
    LazyGreedySelector,
    SelectionTrace,
)
from repro.core.strategy import Strategy
from repro.core.vectorized import resolve_backend
from repro.dynamic.apply import apply_delta
from repro.dynamic.delta import InstanceDelta

__all__ = ["IncrementalSolver", "SolverState", "instance_signature"]


def instance_signature(instance: RevMaxInstance) -> str:
    """Content digest of the tensors a solver state is only valid against.

    Recorded pop sequences replay correctly only on the *exact* instance
    they were computed on; pairing a persisted state with different
    tensors would silently merge to a wrong strategy.  This digest (sha256
    over the compiled tensors and the scalar dimensions) is stored in
    :class:`SolverState` and checked by :meth:`IncrementalSolver.from_state`.
    Hashing is linear in the instance size (~tens of ms per million
    pairs), paid only when states cross a process boundary.
    """
    compiled = instance.compiled()
    digest = hashlib.sha256()
    digest.update(
        f"{compiled.num_users}|{compiled.horizon}|"
        f"{compiled.display_limit}|{compiled.num_pairs}".encode()
    )
    for name in ("user_ptr", "pair_item", "pair_probs", "prices",
                 "capacities", "betas", "item_class"):
        array = np.ascontiguousarray(getattr(compiled, name))
        digest.update(name.encode())
        digest.update(array.tobytes())
    return digest.hexdigest()

#: One selector-level pop: ``(priority, item, t, admitted)``.
_Event = Tuple[float, int, int, bool]


@dataclass
class SolverState:
    """The persistable warm state of an :class:`IncrementalSolver`.

    Attributes:
        admits: the admission sequence of the last solve in global admission
            order, as ``(user, item, t, gain)`` rows.  Encodes the strategy,
            the growth curve (the running float sum of gains reproduces it
            bit for bit) and the admission order.
        events: the per-user selector-level pop sequences (gates and
            admissions) the next re-solve merges; see
            :class:`~repro.core.selection.SelectionTrace`.
        complete: whether the sequences are replayable in isolation (the
            recorded run drained its frontier and never hit a capacity
            block).  ``False`` forces the next re-solve onto the cold
            fallback.
        instance_name: label of the instance the state was computed on.
        signature: content digest (:func:`instance_signature`) of the
            instance the state was computed on; ``from_state`` refuses a
            mismatched pairing.
    """

    admits: List[Tuple[int, int, int, float]] = field(default_factory=list)
    events: Dict[int, List[_Event]] = field(default_factory=dict)
    complete: bool = True
    instance_name: str = "revmax-instance"
    signature: str = ""

    def growth_curve(self) -> List[Tuple[int, float]]:
        """Reconstruct the cumulative ``(size, revenue)`` growth curve."""
        curve: List[Tuple[int, float]] = []
        total = 0.0
        for size, (_, _, _, gain) in enumerate(self.admits, start=1):
            total += gain
            curve.append((size, total))
        return curve

    def triples(self) -> List[Triple]:
        """Admitted triples in admission order."""
        return [Triple(user, item, t) for user, item, t, _ in self.admits]


class IncrementalSolver:
    """G-Greedy with in-place deltas and warm-started re-solves.

    The solver owns one instance for its whole life: :meth:`solve` runs a
    cold columnar G-Greedy (bit-identical to
    ``GlobalGreedy().build_strategy(instance)``) while recording the warm
    state, and :meth:`resolve` mutates the instance per a delta and repairs
    the strategy, replaying the recorded pop sequences of every user the
    delta cannot touch.

    Only the paper-default configuration is supported (isolated seeds, lazy
    forward, two-level frontier, numpy backend, full horizon): that is the
    configuration whose cold behaviour the warm replay reproduces exactly.
    GlobalNo and the ablation variants re-solve cold through
    :class:`~repro.algorithms.global_greedy.GlobalGreedy` as before.

    Args:
        instance: the instance to solve and mutate.  Columnar-backed
            instances re-solve fastest; dict-backed ones work too (their
            cached compilation is patched alongside the table).
        backend: revenue-engine backend; must resolve to ``"numpy"``.

    Attributes:
        strategy: the current solution (after ``solve``/``resolve``).
        growth_curve: cumulative ``(size, revenue)`` checkpoints, identical
            to the cold run's.
        revenue: expected revenue of ``strategy`` (the growth curve's tail).
        last_stats: diagnostics of the last call -- ``mode`` (``"cold"``,
            ``"merge"`` or ``"replay"``), ``admitted``, and per mode the
            dirty/reused split or the ``fallback_reason``.
    """

    def __init__(self, instance: RevMaxInstance,
                 backend: Optional[str] = None) -> None:
        if resolve_backend(backend) != "numpy":
            raise ValueError(
                "IncrementalSolver requires the numpy backend (the columnar "
                "selection path is the cold reference it reproduces)"
            )
        self._instance = instance
        self.strategy: Optional[Strategy] = None
        self.growth_curve: List[Tuple[int, float]] = []
        self.revenue: float = 0.0
        self.last_stats: Dict[str, object] = {}
        self._admit_order: Optional[List[Tuple[Triple, float]]] = None
        self._events: Dict[int, List[_Event]] = {}
        self._complete = False
        self._state_version = -1

    @property
    def instance(self) -> RevMaxInstance:
        """The instance this solver owns (mutated in place by deltas)."""
        return self._instance

    # ------------------------------------------------------------------
    # cold solve
    # ------------------------------------------------------------------
    def solve(self) -> Strategy:
        """Run a cold columnar G-Greedy, recording the warm state."""
        self._run_cold(mode="cold")
        return self.strategy

    def _run_cold(self, mode: str, **stats) -> None:
        """The cold reference loop (with tracing), shared with the fallback."""
        instance = self._instance
        model = RevenueModel(instance, backend="numpy")
        trace = SelectionTrace()
        strategy = Strategy(instance.catalog)
        selector = LazyGreedySelector(
            instance, model, ConstraintChecker(instance),
            seed_priorities=SEED_ISOLATED,
            max_selections=_selection_bound(instance),
            trace=trace,
        )
        growth_curve: List[Tuple[int, float]] = []
        selector.select(strategy, None, growth_curve=growth_curve,
                        initial_revenue=0.0)
        # A capped exit is replayable *here* because the bound is the
        # display-theoretic maximum: reaching it means every user's display
        # slots are full, so the unrecorded suffix of every per-user
        # sequence is pure display discards and omitting it is harmless.
        replayable = not (trace.truncated or trace.capacity_blocked)
        events = {user: _compress_events(sequence)
                  for user, sequence in trace.events.items()}
        self._install(strategy, growth_curve, list(trace.admissions),
                      events, replayable)
        self.last_stats = {"mode": mode, "admitted": len(strategy), **stats}

    # ------------------------------------------------------------------
    # incremental re-solve
    # ------------------------------------------------------------------
    def resolve(self, delta: Optional[InstanceDelta] = None) -> Strategy:
        """Apply ``delta`` and repair the strategy; return the new strategy.

        The result is exactly what ``solve()`` would produce on the mutated
        instance -- the same triples admitted in the same order with the
        same float gains.  With no warm state (``solve`` never ran) or when
        a soundness guard fails, the re-solve runs the cold loop on the
        patched tensors instead of the stream merge; ``last_stats["mode"]``
        says which path ran.

        Args:
            delta: the batch of changes; ``None`` or an empty delta
                re-solves the unchanged instance (a no-op that replays
                every recorded sequence -- the identity the differential
                suite pins down).
        """
        if delta is None:
            delta = InstanceDelta()
        had_state = self._admit_order is not None
        # Mutations that did not come through this solver (a direct
        # apply_delta on the instance, table.set calls, ...) invalidate the
        # recorded sequences; the adoption-table mutation counter catches
        # them.  (Silent in-place writes to the price/capacity arrays are
        # the one thing this cannot see -- route changes through deltas.)
        externally_mutated = (
            had_state
            and getattr(self._instance.adoption, "_version", 0)
            != self._state_version
        )
        touched_pairs = delta.touched_pairs()
        price_cells = delta.touched_price_cells()
        new_users = sorted(delta.new_users)
        if not delta.is_empty():
            apply_delta(self._instance, delta)
        if not had_state:
            self._run_cold(mode="replay", fallback_reason="no warm state")
            return self.strategy
        if externally_mutated:
            self._run_cold(mode="replay",
                           fallback_reason="instance mutated outside the "
                                           "solver")
            return self.strategy
        if not self._complete:
            self._run_cold(
                mode="replay",
                fallback_reason="previous run not user-replayable "
                                "(non-positive break or capacity block)",
            )
            return self.strategy
        if not self._capacity_safe():
            self._run_cold(mode="replay",
                           fallback_reason="capacity constraint can bind")
            return self.strategy

        dirty = self._dirty_users(touched_pairs, price_cells, new_users)
        dirty_events, replayable = self._simulate_users(sorted(dirty))
        if not replayable:
            self._run_cold(mode="replay",
                           fallback_reason="dirty re-run not user-replayable",
                           dirty_users=len(dirty))
            return self.strategy

        events = {
            user: sequence for user, sequence in self._events.items()
            if user not in dirty
        }
        reused = sum(len(sequence) for sequence in events.values())
        events.update(dirty_events)
        strategy, growth_curve, order = self._merge(events)
        self._install(strategy, growth_curve, order, events, True)
        self.last_stats = {
            "mode": "merge",
            "admitted": len(strategy),
            "dirty_users": len(dirty),
            "reused_events": reused,
        }
        return self.strategy

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _install(self, strategy: Strategy,
                 growth_curve: List[Tuple[int, float]],
                 order: List[Tuple[Triple, float]],
                 events: Dict[int, List[_Event]],
                 complete: bool) -> None:
        self.strategy = strategy
        self.growth_curve = growth_curve
        self.revenue = growth_curve[-1][1] if growth_curve else 0.0
        self._admit_order = order
        self._events = events
        self._complete = complete
        self._state_version = getattr(self._instance.adoption, "_version", 0)

    def _capacity_safe(self) -> bool:
        """True when no capacity constraint can ever block an admission.

        An item's audience can only grow towards its distinct candidate
        users; when that count is within capacity for every item,
        ``ConstraintChecker.can_add`` can never fail on capacity (an absent
        user always finds ``audience <= candidates - 1 < capacity``) and
        the admit loop is exactly user-decomposable.
        """
        compiled = self._instance.compiled()
        candidate_users = np.bincount(compiled.pair_item,
                                      minlength=compiled.num_items)
        return bool(np.all(candidate_users
                           <= np.asarray(compiled.capacities)))

    def _dirty_users(self, touched_pairs: Set[Tuple[int, int]],
                     price_cells: Set[Tuple[int, int]],
                     new_users: List[int]) -> Set[int]:
        """Users whose pop sequences the delta can touch.

        A user is dirty when one of its candidate pairs' probability
        vectors changed, when one of its candidate items had a price cell
        rewritten (the isolated seed and every marginal involving that item
        move -- and, through the shared (user, class) group, same-class
        marginals can too), or when it is new.  Everyone else's rows, seeds
        and group states are byte-identical to the previous run, so their
        recorded sequences replay verbatim.
        """
        compiled = self._instance.compiled()
        dirty: Set[int] = set(user for user, _ in touched_pairs)
        dirty.update(new_users)
        for item in {item for item, _ in price_cells}:
            rows = compiled.rows_of_item(item)
            dirty.update(compiled.pair_user[rows].tolist())
        return dirty

    def _simulate_users(self, users: List[int]
                        ) -> Tuple[Dict[int, List[_Event]], bool]:
        """Re-run the greedy loop per dirty user on its own candidate rows.

        Each user's run is the serial selection loop restricted to the
        user's triples: same seeding rule, same two-level heap tie-breaking
        (candidates are fed in CSR order, the order the columnar frontier
        stores), same lazy-forward freshness -- so each recorded sequence
        is exactly the user's slice of a cold run on the mutated instance.
        Returns the sequences and whether every run stayed replayable
        (drained its frontier without a break or capacity block).
        """
        instance = self._instance
        model = RevenueModel(instance, backend="numpy")
        checker = ConstraintChecker(instance)
        compiled = instance.compiled()
        events: Dict[int, List[_Event]] = {}
        replayable = True
        for user in users:
            start = int(compiled.user_ptr[user])
            stop = int(compiled.user_ptr[user + 1])
            candidates: List[Triple] = []
            for row in range(start, stop):
                item = int(compiled.pair_item[row])
                for t in np.flatnonzero(
                    compiled.pair_probs[row] > 0.0
                ).tolist():
                    candidates.append(Triple(user, item, t))
            trace = SelectionTrace()
            selector = LazyGreedySelector(
                instance, model, checker,
                seed_priorities=SEED_ISOLATED,
                trace=trace,
            )
            scratch = Strategy(instance.catalog)
            selector.select(scratch, candidates)
            replayable = replayable and trace.complete()
            events[user] = _compress_events(trace.events.get(user, []))
        return events, replayable

    def _merge(self, events: Dict[int, List[_Event]]):
        """K-way merge of per-user pop sequences in cold heap order.

        The cold columnar frontier serves pops by ``(-priority, CSR row)``;
        with capacity out of the picture each user's next pop is its
        recorded head, so this merge reproduces the cold pop order --
        admissions, refresh gates and discard gates alike -- without
        touching a revenue kernel.
        """
        # Tie-breaking rows for every event, one vectorized lookup for the
        # whole merge (per-user calls would pay numpy dispatch 10^5 times).
        users_with_events = [user for user, sequence in events.items()
                             if sequence]
        lengths = [len(events[user]) for user in users_with_events]
        flat_users = np.repeat(
            np.asarray(users_with_events, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64) if lengths else 0,
        )
        flat_items = np.fromiter(
            (event[1] for user in users_with_events for event in events[user]),
            dtype=np.int64, count=int(flat_users.shape[0]),
        )
        compiled = self._instance.compiled()
        flat_rows = compiled.pair_rows(flat_users, flat_items)
        rows: Dict[int, np.ndarray] = {}
        cursor = 0
        for user, length in zip(users_with_events, lengths):
            rows[user] = flat_rows[cursor:cursor + length]
            cursor += length
        heap: List[Tuple[float, int, int, int]] = []
        for user, sequence in events.items():
            if sequence:
                heap.append((-sequence[0][0], int(rows[user][0]), user, 0))
        heapq.heapify(heap)
        strategy = Strategy(self._instance.catalog)
        growth_curve: List[Tuple[int, float]] = []
        order: List[Tuple[Triple, float]] = []
        revenue = 0.0
        while heap:
            _, _, user, position = heapq.heappop(heap)
            sequence = events[user]
            priority, item, t, admitted = sequence[position]
            if admitted:
                triple = Triple(user, item, t)
                strategy.add(triple)
                revenue += priority
                growth_curve.append((len(strategy), revenue))
                order.append((triple, priority))
            position += 1
            if position < len(sequence):
                heapq.heappush(heap, (
                    -sequence[position][0], int(rows[user][position]),
                    user, position,
                ))
        return strategy, growth_curve, order

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state(self) -> SolverState:
        """Export the warm state (see :func:`repro.io.save_solver_state`).

        Raises:
            ValueError: when no solve has run yet.
        """
        if self._admit_order is None:
            raise ValueError("no solver state to export: call solve() first")
        return SolverState(
            admits=[
                (int(z.user), int(z.item), int(z.t), float(gain))
                for z, gain in self._admit_order
            ],
            events=self._events,
            complete=self._complete,
            instance_name=self._instance.name,
            signature=instance_signature(self._instance),
        )

    @classmethod
    def from_state(cls, instance: RevMaxInstance, state: SolverState,
                   backend: Optional[str] = None) -> "IncrementalSolver":
        """Rebuild a warm solver from a persisted state.

        The state is only meaningful against the exact tensors it was
        computed on, so the recorded content digest is checked against
        ``instance`` -- a mismatch (say, a ``state.json`` from a delta
        cycle paired with the pre-delta ``.npz``) is rejected instead of
        silently replaying garbage.  Persist the mutated instance next to
        the state (``repro resolve --save-instance``) to keep the pair in
        lock step.

        Raises:
            ValueError: when the state was computed on different tensors.
        """
        if state.signature and state.signature != instance_signature(instance):
            raise ValueError(
                f"solver state (computed on {state.instance_name!r}) does "
                f"not match this instance's tensors; re-solve cold or load "
                f"the instance the state was saved with (persist both with "
                f"repro resolve --save-state/--save-instance)"
            )
        solver = cls(instance, backend=backend)
        order: List[Tuple[Triple, float]] = []
        strategy = Strategy(instance.catalog)
        growth_curve: List[Tuple[int, float]] = []
        revenue = 0.0
        for user, item, t, gain in state.admits:
            triple = Triple(int(user), int(item), int(t))
            order.append((triple, float(gain)))
            strategy.add(triple)
            revenue += float(gain)
            growth_curve.append((len(strategy), revenue))
        events = {
            int(user): [
                (float(priority), int(item), int(t), bool(admitted))
                for priority, item, t, admitted in sequence
            ]
            for user, sequence in state.events.items()
        }
        solver._install(strategy, growth_curve, order, events,
                        bool(state.complete))
        solver.last_stats = {"mode": "from_state", "admitted": len(strategy)}
        return solver


def _compress_events(sequence: List[_Event]) -> List[_Event]:
    """Drop the gates that cannot affect the merge (usually almost all).

    A gate's only role is to *hide* the user's later, higher-valued events
    behind its own priority: without it, a later event would surface in
    the global merge earlier than the cold run allows (see the module
    docstring on non-submodular upward refreshes).  A gate strictly
    greater than **every** later event of the same user hides nothing --
    dropping it just presents the user's next event immediately, and since
    that next event is strictly smaller, every other user's event that the
    cold run would pop in between still pops in between.  Admissions are
    always kept.  Equal values are kept conservatively: a later equal
    value's tie-break row could differ from the gate's.

    In practice this removes the long tail of display discards a
    saturated run pops while draining its frontier -- typically >half of
    all recorded events -- which is pure merge/persistence overhead.
    """
    kept: List[_Event] = []
    suffix_max = float("-inf")
    for event in reversed(sequence):
        priority = event[0]
        if event[3] or priority <= suffix_max:
            kept.append(event)
        if priority > suffix_max:
            suffix_max = priority
    kept.reverse()
    return kept


def _selection_bound(instance: RevMaxInstance) -> int:
    """The display-theoretic admission bound ``k * T * |users|``.

    Matches
    :meth:`repro.algorithms.global_greedy.GlobalGreedy._max_selections` so
    the cold run here is bit-identical to ``GlobalGreedy``'s.  The display
    constraint caps admissions at this bound anyway, so it can never stop a
    run early -- which is what makes the per-user merge (which has no
    global cap) exact.
    """
    return instance.display_limit * instance.horizon * max(
        1, len(instance.users())
    )
