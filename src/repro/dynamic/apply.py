"""Apply an :class:`InstanceDelta` to a live ``RevMaxInstance`` in place.

:meth:`repro.core.compiled.CompiledInstance.apply_delta` patches the
tensors; this module is the instance-level entry point that keeps every
layer wrapped around those tensors consistent:

* **columnar-backed instances** (adoption table is a
  :class:`~repro.core.compiled.ColumnarAdoptionTable`): the compilation is
  patched, the adoption-table mutation counter is bumped in lock step with
  the compilation's ``source_version`` (so cached views stay *valid*, not
  stale), and the instance's tensor references are re-synced in case a
  read-only tensor was copy-on-write-replaced;
* **dict-backed instances**: probability updates and new users go through
  ``AdoptionTable.set`` (the object layer stays the source of truth), the
  per-item tensors are patched in place, and a cached fresh compilation is
  patched alongside so ``instance.compiled()`` stays free.

Either way the function mutates ``instance`` and returns it; revenue models
built *before* the delta keep their memoised group revenues, which is
exactly what :class:`repro.dynamic.incremental.IncrementalSolver` exploits
(it invalidates only the entries the delta dirtied).
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled import ColumnarAdoptionTable
from repro.core.problem import RevMaxInstance
from repro.dynamic.delta import InstanceDelta

__all__ = ["apply_delta"]


def _patched_array(array: np.ndarray, updates, caster):
    """Patch scalar cells in place, copying first when read-only."""
    if not array.flags.writeable:
        array = np.array(array)
    for key, value in updates.items():
        array[key] = caster(value)
    return array


def apply_delta(instance: RevMaxInstance, delta: InstanceDelta
                ) -> RevMaxInstance:
    """Mutate ``instance`` (and its cached compilation) per ``delta``.

    The delta is validated against the instance before anything is written;
    a rejected delta leaves the instance unchanged.

    Args:
        instance: the instance to mutate.  Columnar-backed and dict-backed
            instances are both supported.
        delta: the batch of changes.

    Returns:
        The same ``instance`` object, for chaining.

    Raises:
        ValueError: when the delta names unknown pairs/items/times, carries
            malformed vectors, or its new-user ids do not extend the user
            range contiguously.
    """
    if delta.is_empty():
        return instance
    adoption = instance.adoption

    if isinstance(adoption, ColumnarAdoptionTable):
        compiled = adoption.compiled
        compiled.apply_delta(delta)
        # Keep the view's mutation counter in lock step so the compilation
        # reads as *fresh* (models keep their fast path) while models built
        # later still observe that something changed.
        adoption._version = compiled.source_version
        # Copy-on-write inside apply_delta may have replaced tensor objects.
        instance.prices = compiled.prices
        instance.capacities = compiled.capacities
        instance.num_users = compiled.num_users
        instance._compiled = compiled
        return instance

    # Dict-backed: validate new users against the instance before the first
    # table write (AdoptionTable.set validates vectors but knows nothing of
    # user-id contiguity or item ranges).
    _validate_dict_path(instance, delta)
    compiled = instance.compiled_or_none()
    fresh = (
        compiled is not None
        and compiled.source_version == getattr(adoption, "_version", 0)
    )
    if fresh:
        # Patch the tensors first: apply_delta validates against the CSR
        # (probability updates must name existing pairs) and is atomic, so
        # the dict table is only touched once the delta is known-good.
        compiled.apply_delta(delta)
    for (user, item), vector in sorted(delta.probability_updates.items()):
        adoption.set(user, item, vector)
    for user in sorted(delta.new_users):
        for item, vector in sorted(delta.new_users[user].items()):
            adoption.set(user, item, vector)
    instance.num_users += len(delta.new_users)
    instance.prices = _patched_array(instance.prices, delta.price_updates,
                                     float)
    instance.capacities = _patched_array(instance.capacities,
                                         delta.capacity_updates, int)
    if fresh:
        compiled.prices = instance.prices
        compiled.capacities = instance.capacities
        compiled.source_version = getattr(adoption, "_version", 0)
        instance._compiled = compiled
    elif compiled is not None:
        # A stale compilation would silently keep pre-delta prices or
        # capacities; drop it so the next compiled() call rebuilds.
        instance._compiled = None
    return instance


def _validate_dict_path(instance: RevMaxInstance,
                        delta: InstanceDelta) -> None:
    """The checks the dict table cannot perform itself, before any write.

    Ranges, shapes and new-user contiguity come from the shared
    :meth:`InstanceDelta.validate_ranges`; only the pair-existence check is
    layout-specific here (the CSR path asks the candidate table instead).
    """
    delta.validate_ranges(instance.num_items, instance.horizon,
                          instance.num_users)
    for (user, item) in delta.probability_updates:
        if instance.adoption.get(user, item) is None:
            raise ValueError(
                f"probability update for (user={user}, item={item}) names "
                f"a pair absent from the adoption table; new pairs can "
                f"only arrive with new users"
            )
