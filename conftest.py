"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (e.g. on offline machines where ``pip install -e .`` cannot resolve
build dependencies).  When the package is properly installed this is a no-op.

Also defines the ``--run-benchmarks`` flag: a smoke mode for the benchmark
suites that pins the reproduction scales to ``tiny`` (unless the
``REPRO_BENCH_*`` environment variables are already set), used by the CI
benchmark job.  Without the flag, benchmarks run at their default (small)
scale exactly as before.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--run-benchmarks",
        action="store_true",
        default=False,
        help="benchmark smoke mode: pin REPRO_BENCH_SCALE and "
             "REPRO_BENCH_SWEEP_SCALE to 'tiny' unless already set",
    )


def pytest_configure(config):
    if config.getoption("--run-benchmarks"):
        os.environ.setdefault("REPRO_BENCH_SCALE", "tiny")
        os.environ.setdefault("REPRO_BENCH_SWEEP_SCALE", "tiny")
