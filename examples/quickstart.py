"""Quickstart: build a small REVMAX instance by hand and solve it.

This example shows the core objects of the library without any dataset
machinery:

1. describe the market -- items, competition classes, prices over a one-week
   horizon, per-item capacities and saturation factors;
2. provide primitive adoption probabilities ``q(u, i, t)`` for the candidate
   (user, item) pairs;
3. run Global Greedy and inspect the resulting recommendation plan and its
   expected revenue;
4. cross-check the expected revenue with a Monte-Carlo adoption simulation.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import GlobalGreedy, RevMaxInstance, RevenueModel
from repro.simulation import AdoptionSimulator


def build_instance() -> RevMaxInstance:
    """A toy market: two tablets, one pair of headphones, three users, T = 7."""
    horizon = 7
    # Item 0 and 1 are tablets (same class, they compete); item 2 is its own class.
    item_class = [0, 0, 1]

    # Daily prices: tablet 0 goes on sale mid-week, tablet 1 is steady,
    # the headphones creep up in price.
    prices = np.array([
        [399, 399, 399, 329, 329, 399, 399],      # tablet A (mid-week sale)
        [349, 349, 349, 349, 349, 349, 349],      # tablet B (steady)
        [99, 99, 105, 105, 110, 110, 115],        # headphones (creeping up)
    ], dtype=float)

    # Primitive adoption probabilities for the candidate (user, item) pairs:
    # higher when the price is lower (users have private valuations).
    def affordability(base, price_row):
        return np.clip(base * (price_row.min() / price_row), 0.05, 0.95)

    adoption = {
        (0, 0): affordability(0.5, prices[0]),    # user 0 loves tablet A
        (0, 2): affordability(0.6, prices[2]),
        (1, 0): affordability(0.3, prices[0]),
        (1, 1): affordability(0.45, prices[1]),   # user 1 prefers tablet B
        (2, 1): affordability(0.35, prices[1]),
        (2, 2): affordability(0.7, prices[2]),    # user 2 mostly wants headphones
    }

    return RevMaxInstance.from_dense_adoption(
        prices=prices,
        adoption=adoption,
        item_class=item_class,
        capacities=2,          # each item can be pushed to at most 2 distinct users
        betas=0.6,             # moderate saturation
        display_limit=1,       # one recommendation per user per day
        num_users=3,
        name="quickstart-market",
    )


def main() -> None:
    instance = build_instance()
    print(f"Instance: {instance.name}")
    print(f"  users={instance.num_users}  items={instance.num_items}  "
          f"T={instance.horizon}  candidate triples={instance.num_candidate_triples()}")

    result = GlobalGreedy().run(instance)
    print(f"\n{result.summary()}\n")

    print("Recommendation plan (chronological):")
    model = RevenueModel(instance)
    for triple in result.strategy.sorted_triples():
        probability = model.dynamic_probability(result.strategy, triple)
        price = instance.price(triple.item, triple.t)
        print(f"  day {triple.t}: user {triple.user} <- item {triple.item} "
              f"(price ${price:.0f}, adoption prob {probability:.2f})")

    simulation = AdoptionSimulator(instance, seed=0).run(result.strategy, num_runs=2000)
    print(f"\nExpected revenue (model):      ${result.revenue:,.2f}")
    print(f"Simulated revenue (2000 runs): ${simulation.mean_revenue:,.2f} "
          f"+/- {simulation.revenue_confidence_halfwidth():,.2f}")


if __name__ == "__main__":
    main()
