"""Columnar workflow: generate at scale, persist as .npz, solve memory-mapped.

The columnar instance core compiles a REVMAX instance into contiguous
ID-indexed tensors (see ``docs/architecture.md``, "Columnar instance core").
This example walks the production-shaped loop:

1. generate a synthetic instance straight into the columnar layout -- the
   per-pair dict of the object layout is never materialized;
2. inspect the compiled tensors (CSR candidate table, footprint);
3. persist the instance as an uncompressed ``.npz`` archive;
4. reload it with the tensors memory-mapped and solve with G-Greedy, whose
   frontier is bulk-seeded from the same tensors.

Run with::

    python examples/columnar_scale.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import GlobalGreedy, generate_synthetic_columnar
from repro.datasets.synthetic import SyntheticConfig
from repro.io import load_instance_npz, save_instance_npz


def main() -> None:
    # Laptop-scale sizes; raise num_users to 100_000+ for the paper's
    # Figure 6 regime (generation stays vectorized and takes seconds).
    config = SyntheticConfig(
        num_users=2_000, num_items=500, num_classes=50,
        candidates_per_user=12, horizon=4, display_limit=2, seed=42,
    )
    start = time.perf_counter()
    instance = generate_synthetic_columnar(config)
    compiled = instance.compiled()
    print(
        f"generated {compiled.num_pairs:,} candidate pairs "
        f"({compiled.num_candidate_triples():,} triples) "
        f"in {time.perf_counter() - start:.2f}s"
    )
    footprint = compiled.memory_footprint()
    print(
        f"compiled tensors: {footprint['total'] / 1e6:.1f} MB total, "
        f"pair_probs {footprint['pair_probs'] / 1e6:.1f} MB"
    )

    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "instance.npz"
        save_instance_npz(instance, path)
        print(f"saved {path.stat().st_size / 1e6:.1f} MB archive")

        loaded = load_instance_npz(path)  # tensors memory-mapped
        start = time.perf_counter()
        result = GlobalGreedy().run(loaded)
        print(
            f"G-Greedy on the memory-mapped instance: "
            f"revenue {result.revenue:,.2f}, plan size {result.strategy_size:,}, "
            f"{time.perf_counter() - start:.2f}s"
        )


if __name__ == "__main__":
    main()
