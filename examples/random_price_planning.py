"""Planning under uncertain future prices (§7 of the paper).

When a seller only has a *distribution* over future prices (e.g. a price
prediction model), the paper suggests planning on the mean prices and
estimating the true expected revenue with a second-order Taylor expansion
around the mean price vector.  This example:

1. builds a small random-price market (Gaussian price distributions, adoption
   probabilities that fall with price);
2. plans a recommendation strategy with Global Greedy on the mean-price
   instance;
3. estimates the strategy's expected revenue three ways -- plugging in mean
   prices, the Taylor expansion, and Monte-Carlo simulation over price draws --
   and reports how much accuracy the Taylor correction buys.

Run with::

    python examples/random_price_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import GlobalGreedy, ItemCatalog, PriceDistribution, TaylorRevenueModel


def main() -> None:
    rng = np.random.default_rng(7)
    num_users, num_items, horizon = 20, 10, 5

    catalog = ItemCatalog.from_assignment([item % 4 for item in range(num_items)])
    mean_prices = rng.uniform(40.0, 300.0, size=(num_items, horizon))
    price_std = 0.2 * mean_prices                      # 20% price uncertainty
    distribution = PriceDistribution(mean_prices, price_std ** 2)

    reference = mean_prices.mean(axis=1) * rng.uniform(0.9, 1.3, size=num_items)

    def adoption_given_price(user: int, item: int, t: int, price: float) -> float:
        """Willingness to buy falls linearly as the price exceeds the reference."""
        return float(np.clip(1.3 - 0.8 * price / reference[item], 0.0, 1.0))

    candidate_pairs = [
        (user, int(item))
        for user in range(num_users)
        for item in rng.choice(num_items, size=4, replace=False)
    ]

    model = TaylorRevenueModel(
        num_users=num_users,
        catalog=catalog,
        display_limit=2,
        capacities=num_users,
        betas=0.5,
        price_distribution=distribution,
        adoption_given_price=adoption_given_price,
        candidate_pairs=candidate_pairs,
    )

    print("Planning on the mean-price instance with G-Greedy...")
    planning_instance = model.mean_price_instance()
    strategy = GlobalGreedy().build_strategy(planning_instance)
    triples = strategy.sorted_triples()
    print(f"  planned {len(triples)} recommendations over T={horizon}")

    mean_estimate = model.expected_price_revenue(triples)
    taylor_estimate = model.taylor_revenue(triples)
    ground_truth = model.monte_carlo_revenue(triples, num_samples=1500, seed=0)

    print("\nExpected revenue of the plan under random prices:")
    print(f"  mean-price estimate (0th order):   ${mean_estimate:10,.2f}")
    print(f"  Taylor estimate (2nd order):       ${taylor_estimate:10,.2f}")
    print(f"  Monte-Carlo ground truth:          ${ground_truth:10,.2f}")
    print(f"\n  |error| mean-price: ${abs(mean_estimate - ground_truth):,.2f}")
    print(f"  |error| Taylor:     ${abs(taylor_estimate - ground_truth):,.2f}")
    improvement = (abs(mean_estimate - ground_truth)
                   - abs(taylor_estimate - ground_truth))
    print(f"\n=> The second-order correction removes ${improvement:,.2f} of estimation "
          "error, as §7 of the paper anticipates.")


if __name__ == "__main__":
    main()
