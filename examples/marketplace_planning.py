"""End-to-end marketplace planning: dataset -> pipeline -> algorithm comparison.

This example mirrors the paper's evaluation workflow on the simulated
Amazon-Electronics-like dataset:

1. generate the dataset (ratings, item classes, a week of daily prices);
2. run the §6.1 pipeline -- matrix factorization, top-N candidate selection,
   valuation fitting, primitive adoption probabilities, capacity / saturation
   sampling -- to obtain a REVMAX instance;
3. run the six algorithms the paper compares (G-Greedy, GlobalNo, RL-Greedy,
   SL-Greedy, TopRE, TopRA) and report revenue, plan size and running time;
4. sanity-check the winning plan with the Monte-Carlo adoption simulator.

Run with::

    python examples/marketplace_planning.py
"""

from __future__ import annotations

from repro.experiments.harness import (
    predicted_ratings_map,
    prepare_dataset,
    run_algorithms,
    standard_algorithms,
)
from repro.experiments.reporting import format_table
from repro.simulation import AdoptionSimulator


def main() -> None:
    print("Preparing the Amazon-like dataset (generation + MF + adoption model)...")
    pipeline = prepare_dataset("amazon", scale="small", seed=0)
    instance = pipeline.instance
    print(f"  users={instance.num_users}  items={instance.num_items}  "
          f"T={instance.horizon}  candidate triples={instance.num_candidate_triples()}")

    algorithms = standard_algorithms(
        predicted_ratings=predicted_ratings_map(pipeline),
        rl_permutations=8,
    )
    print("\nRunning the six algorithms of the paper's evaluation...")
    results = run_algorithms(instance, algorithms)

    rows = [
        [name, result.revenue, result.strategy_size, result.runtime_seconds]
        for name, result in sorted(results.items(),
                                   key=lambda item: -item[1].revenue)
    ]
    print("\n" + format_table(
        ["algorithm", "expected revenue", "plan size", "seconds"], rows
    ))

    best_name, best = max(results.items(), key=lambda item: item[1].revenue)
    lift_over_top_re = 100.0 * (best.revenue / results["TopRE"].revenue - 1.0)
    lift_over_top_ra = 100.0 * (best.revenue / results["TopRA"].revenue - 1.0)
    print(f"\n{best_name} beats the static revenue baseline (TopRE) by "
          f"{lift_over_top_re:.1f}% and the rating baseline (TopRA) by "
          f"{lift_over_top_ra:.1f}%.")

    simulation = AdoptionSimulator(instance, seed=1).run(best.strategy, num_runs=500)
    print(f"Monte-Carlo check of {best_name}: simulated revenue "
          f"${simulation.mean_revenue:,.0f} vs expected ${best.revenue:,.0f}")


if __name__ == "__main__":
    main()
