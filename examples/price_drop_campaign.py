"""Strategic timing around a planned sale -- the paper's motivating scenario.

The introduction of the paper argues that when a product is scheduled to go on
sale, a revenue-aware recommender should *postpone* recommending it to
low-valuation users until the sale date (they will only buy at the reduced
price) while recommending it to high-valuation users *before* the price drops
(capturing the higher margin).  A static, rating-based recommender cannot make
that distinction.

This example sets up exactly that scenario -- one flagship product whose price
drops on day 4, one high-valuation user and one low-valuation user -- and
shows that Global Greedy schedules the two recommendations on different days,
earning more than either "always recommend on day 0" or "always recommend on
the sale day".

Run with::

    python examples/price_drop_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import GlobalGreedy, RevMaxInstance, RevenueModel, Strategy, Triple
from repro.pricing.valuation import GaussianValuation


def build_instance() -> RevMaxInstance:
    horizon = 7
    full_price, sale_price = 500.0, 350.0
    sale_day = 4

    prices = np.full((1, horizon), full_price)
    prices[0, sale_day:] = sale_price

    # Two users with private valuations around different means.
    valuations = {
        0: GaussianValuation(mean=560.0, std=40.0),   # high-valuation user
        1: GaussianValuation(mean=380.0, std=40.0),   # low-valuation user
    }
    interest = {0: 0.9, 1: 0.9}  # both are equally interested per the ratings

    adoption = {}
    for user, valuation in valuations.items():
        adoption[(user, 0)] = [
            interest[user] * valuation.acceptance_probability(prices[0, t])
            for t in range(horizon)
        ]

    return RevMaxInstance.from_dense_adoption(
        prices=prices,
        adoption=adoption,
        item_class=[0],
        capacities=2,
        betas=0.2,            # repeating the pitch quickly bores the user
        display_limit=1,
        num_users=2,
        name="price-drop-campaign",
    )


def main() -> None:
    instance = build_instance()
    model = RevenueModel(instance)
    sale_day = 4

    print("Price schedule for the flagship product:")
    print("  " + "  ".join(f"day{t}=${instance.price(0, t):.0f}"
                           for t in range(instance.horizon)))
    print("\nAdoption probability if recommended on a given day:")
    for user in range(2):
        row = "  ".join(f"{instance.probability(user, 0, t):.2f}"
                        for t in range(instance.horizon))
        label = "high-valuation" if user == 0 else "low-valuation "
        print(f"  user {user} ({label}): {row}")

    result = GlobalGreedy().run(instance)
    print(f"\nG-Greedy plan ({result.summary()}):")
    timing = {}
    for triple in result.strategy.sorted_triples():
        timing.setdefault(triple.user, []).append(triple.t)
        print(f"  user {triple.user} <- flagship on day {triple.t} "
              f"(price ${instance.price(0, triple.t):.0f})")

    first_pitch = {user: min(days) for user, days in timing.items()}
    if first_pitch.get(0, 99) < sale_day <= first_pitch.get(1, -1):
        print("\n=> The plan pitches the high-valuation user BEFORE the sale and "
              "the low-valuation user ON/AFTER the sale, as the paper's intro argues.")

    # Compare against the two naive static timings.
    naive_early = Strategy(instance.catalog, [Triple(0, 0, 0), Triple(1, 0, 0)])
    naive_sale = Strategy(instance.catalog,
                          [Triple(0, 0, sale_day), Triple(1, 0, sale_day)])
    print("\nExpected revenue comparison:")
    print(f"  strategic (G-Greedy):        ${result.revenue:8.2f}")
    print(f"  recommend both on day 0:     ${model.revenue(naive_early):8.2f}")
    print(f"  recommend both on sale day:  ${model.revenue(naive_sale):8.2f}")


if __name__ == "__main__":
    main()
