"""Packaging metadata for the REVMAX reproduction.

A plain ``setup.py`` (rather than ``pyproject.toml``) so that environments
without the ``wheel`` package (e.g. offline machines where PEP 517 editable
builds cannot fetch build dependencies) can still install the package with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

import os

from setuptools import find_packages, setup

with open(os.path.join(os.path.dirname(os.path.abspath(__file__)), "README.md"),
          encoding="utf-8") as readme:
    _LONG_DESCRIPTION = readme.read()

setup(
    name="repro-revmax",
    version="1.0.0",
    description=(
        "Reproduction of 'Show Me the Money: Dynamic Recommendations for "
        "Revenue Maximization' (Lu, Chen, Li, Lakshmanan; PVLDB 2014)"
    ),
    long_description=_LONG_DESCRIPTION,
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
    ],
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "pytest-cov>=4",
            "pytest-xdist>=3",
            "hypothesis>=6",
        ],
        # Optional native kernel tier (repro.core.kernels): JIT-compiled
        # admit-loop kernels.  Never in install_requires -- the pure-NumPy
        # tier is always available and bit-identical.
        "kernels": [
            "numba",
        ],
    },
)
