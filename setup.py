"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so that
environments without the ``wheel`` package (e.g. offline machines where PEP
517 editable builds cannot fetch build dependencies) can still install the
package with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
